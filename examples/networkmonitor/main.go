// Network monitoring / outbreak detection (the paper cites Leskovec et al.'s
// outbreak detection as a core IM application): watch a stream for sudden
// influence bursts. A normally quiet account starts a cascade; the sliding
// window makes it surface among the seeds within one window and — just as
// importantly — fade out again once its cascade expires. A static IM method
// would keep recommending it long after the burst died.
//
// Run with: go run ./examples/networkmonitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/sim"
)

const (
	burstUser  = 9999
	window     = 5000
	background = 30000
)

func main() {
	tracker, err := sim.New(sim.Config{K: 3, WindowSize: window, Slide: 50})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	id := sim.ActionID(0)
	emit := func(a sim.Action) {
		if err := tracker.Process(a); err != nil {
			log.Fatal(err)
		}
	}
	next := func() sim.ActionID { id++; return id }

	// Phase 1: background chatter — many small, unrelated conversations.
	backgroundAction := func() sim.Action {
		a := sim.Action{ID: next(), User: sim.UserID(rng.Intn(500)), Parent: sim.NoParent}
		if id > 1 && rng.Float64() < 0.6 {
			a.Parent = id - sim.ActionID(rng.Intn(min(int(id-1), 200))+1)
		}
		return a
	}
	for i := 0; i < background; i++ {
		emit(backgroundAction())
	}
	fmt.Printf("before burst:  seeds=%v value=%.0f\n", tracker.Seeds(), tracker.Value())

	// Phase 2: the burst. burstUser posts once; 300 distinct users respond
	// within a short span, interleaved with normal chatter.
	root := next()
	emit(sim.Action{ID: root, User: burstUser, Parent: sim.NoParent})
	for i := 0; i < 300; i++ {
		emit(sim.Action{ID: next(), User: sim.UserID(1000 + i), Parent: root})
		for j := 0; j < 3; j++ {
			emit(backgroundAction())
		}
	}
	fmt.Printf("during burst:  seeds=%v value=%.0f\n", tracker.Seeds(), tracker.Value())
	if !contains(tracker.Seeds(), burstUser) {
		fmt.Println("ALERT MISSED: burst user not detected")
	} else {
		fmt.Printf("ALERT: user %d reaches %d accounts within the window\n",
			burstUser, len(tracker.InfluenceSet(burstUser)))
	}

	// Phase 3: the cascade scrolls out of the window; the monitor recovers.
	for i := 0; i < 2*window; i++ {
		emit(backgroundAction())
	}
	fmt.Printf("after expiry:  seeds=%v value=%.0f\n", tracker.Seeds(), tracker.Value())
	if contains(tracker.Seeds(), burstUser) {
		fmt.Println("stale alert: burst user still reported after its cascade expired")
	} else {
		fmt.Println("burst user aged out with the window, as the sliding-window model intends")
	}
}

func contains(users []sim.UserID, u sim.UserID) bool {
	for _, x := range users {
		if x == u {
			return true
		}
	}
	return false
}
