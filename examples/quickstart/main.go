// Quickstart: the paper's running example (Figure 1) fed through the public
// API. Ten actions arrive; after each one we print the current influential
// users and their influence value over a sliding window of N = 8 actions.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	tracker, err := sim.New(sim.Config{
		K:          2, // maintain the top-2 influencers
		WindowSize: 8, // over the last 8 social actions
	})
	if err != nil {
		log.Fatal(err)
	}

	// The social stream of Figure 1: <user, parent>_time. a2 is u2 replying
	// to u1's post a1, and so on.
	actions := []sim.Action{
		{ID: 1, User: 1, Parent: sim.NoParent},
		{ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: sim.NoParent},
		{ID: 4, User: 3, Parent: 1},
		{ID: 5, User: 4, Parent: 3},
		{ID: 6, User: 1, Parent: 3},
		{ID: 7, User: 5, Parent: 3},
		{ID: 8, User: 4, Parent: 7},
		{ID: 9, User: 2, Parent: sim.NoParent},
		{ID: 10, User: 6, Parent: 9},
	}

	for _, a := range actions {
		if err := tracker.Process(a); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after %-12v seeds=%-8v influence value=%.0f\n",
			a, tracker.Seeds(), tracker.Value())
	}

	// Inspect one user's influence set in the final window: who recently
	// acted under u3's (direct or transitive) impact?
	fmt.Printf("\nI(u3) in the final window: %v\n", tracker.InfluenceSet(3))
	fmt.Printf("window now starts at action %d\n", tracker.WindowStart())
}
