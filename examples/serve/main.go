// Serve walkthrough: the full simserve client path in one process. We boot
// the serving layer (internal/server) on a loopback listener, stream a
// synthetic SYN-O workload into it over HTTP as NDJSON chunks — querying
// the current seeds WHILE ingestion is running, the paper's real-time
// operating mode — and finally check that the served answer is bit-identical
// to a serial sim.Tracker replay of the same actions.
//
// Run with: go run ./examples/serve
//
// The same flow against a real simserve process:
//
//	simserve -addr :8384 -k 5 -window 2000 &
//	simgen -preset syn-o -users 500 -actions 10000 -format ndjson |
//	    curl -s --data-binary @- localhost:8384/v1/trackers/default/actions
//	curl -s localhost:8384/v1/trackers/default/seeds
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"reflect"

	"repro/internal/dataio"
	"repro/internal/gen"
	"repro/internal/server"
	"repro/sim"
)

func main() {
	// A tracker spec, exactly what simserve -spec would read from JSON.
	spec := server.Spec{K: 5, Window: 2000, Framework: sim.SIC, Oracle: sim.SieveStreaming}

	reg := server.NewRegistry()
	if _, err := reg.Add("default", spec); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: server.New(reg)}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// A synthetic workload: 10k actions of the paper's SYN-O stream.
	actions := gen.Stream(gen.SynO(500, 10000, 2000, 7))

	// Ingest in NDJSON chunks, peeking at the live answer along the way —
	// reads never block ingestion, they consume the published snapshot.
	for i := 0; i < len(actions); i += 1000 {
		var body bytes.Buffer
		if err := dataio.WriteNDJSON(&body, actions[i:min(i+1000, len(actions))]); err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/trackers/default/actions", "application/x-ndjson", &body)
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("ingest: status %d", resp.StatusCode)
		}

		var seeds server.SeedsResponse
		getJSON(base+"/v1/trackers/default/seeds", &seeds)
		fmt.Printf("t=%-6d seeds=%v value=%.0f\n", seeds.Processed, seeds.Seeds, seeds.Value)
	}

	// The served state must match a serial replay exactly (the snapshot is
	// taken after each 1000-chunk, mirroring the server's publish points).
	ref, err := sim.New(spec.Config())
	if err != nil {
		log.Fatal(err)
	}
	defer ref.Close()
	var want sim.Snapshot
	for i := 0; i < len(actions); i += 1000 {
		if err := ref.ProcessAll(actions[i:min(i+1000, len(actions))]); err != nil {
			log.Fatal(err)
		}
		want = ref.Snapshot()
	}
	var got sim.Snapshot
	getJSON(base+"/v1/trackers/default", &got)
	if !reflect.DeepEqual(got, want) {
		log.Fatalf("served snapshot diverged from serial replay:\n got %+v\nwant %+v", got, want)
	}
	fmt.Printf("server matches serial replay: seeds=%v value=%.0f checkpoints=%d\n",
		got.Seeds, got.Value, got.Checkpoints)

	// Graceful drain, the SIGTERM path of cmd/simserve.
	httpSrv.Close()
	if err := reg.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained and closed")
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
