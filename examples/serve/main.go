// Serve walkthrough: the full simserve client path in one process. We boot
// the serving layer (internal/server) on a loopback listener and drive it
// entirely through the typed api.Client: stream a synthetic SYN-O workload
// in as NDJSON chunks — querying the current seeds WHILE ingestion is
// running, the paper's real-time operating mode — run a relational plan
// against the published snapshot, and finally check that the served answer
// is bit-identical to a serial sim.Tracker replay of the same actions.
//
// Run with: go run ./examples/serve
//
// The same flow against a real simserve process:
//
//	simserve -addr :8384 -k 5 -window 2000 &
//	simgen -preset syn-o -users 500 -actions 10000 -format ndjson |
//	    curl -s --data-binary @- localhost:8384/v1/trackers/default/actions
//	curl -s localhost:8384/v1/trackers/default/seeds
//	curl -s -X POST localhost:8384/v1/trackers/default/query \
//	    -d '{"plan":{"scan":"seeds","ops":[{"op":"topk","col":"influence","k":3,"desc":true}]}}'
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"

	"repro/api"
	"repro/internal/gen"
	"repro/internal/server"
	"repro/query"
	"repro/sim"
)

func main() {
	ctx := context.Background()

	// A tracker spec, exactly what simserve -spec would read from JSON.
	spec := api.Spec{K: 5, Window: 2000, Framework: sim.SIC, Oracle: sim.SieveStreaming}

	reg := server.NewRegistry()
	if _, err := reg.Add("default", spec); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: server.New(reg)}
	go httpSrv.Serve(ln)
	client := api.NewClient("http://" + ln.Addr().String())
	fmt.Printf("serving on %s\n", client.BaseURL)

	// A synthetic workload: 10k actions of the paper's SYN-O stream.
	actions := gen.Stream(gen.SynO(500, 10000, 2000, 7))

	// Ingest in NDJSON chunks, peeking at the live answer along the way —
	// reads never block ingestion, they consume the published snapshot.
	for i := 0; i < len(actions); i += 1000 {
		if _, err := client.Ingest(ctx, "default", actions[i:min(i+1000, len(actions))]); err != nil {
			log.Fatal(err)
		}
		seeds, err := client.Seeds(ctx, "default")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%-6d seeds=%v value=%.0f\n", seeds.Processed, seeds.Seeds, seeds.Value)
	}

	// A relational query over the same published snapshot: the three seeds
	// with the largest influence sets, lazily scanned and cut server-side.
	res, err := client.Query(ctx, "default", api.QueryRequest{Plan: query.Plan{
		Scan: "seeds",
		Ops:  []query.Op{{Op: "topk", Col: "influence", K: 3, Desc: true}},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query columns=%v\n", res.Columns)
	for _, row := range res.Rows {
		fmt.Printf("  seed user=%v influence=%v\n", row[1], row[2])
	}

	// The served state must match a serial replay exactly (the snapshot is
	// taken after each 1000-chunk, mirroring the server's publish points).
	ref, err := sim.New(spec.Config())
	if err != nil {
		log.Fatal(err)
	}
	defer ref.Close()
	var want sim.Snapshot
	for i := 0; i < len(actions); i += 1000 {
		if err := ref.ProcessAll(actions[i:min(i+1000, len(actions))]); err != nil {
			log.Fatal(err)
		}
		want = ref.Snapshot()
	}
	got, err := client.Snapshot(ctx, "default")
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		log.Fatalf("served snapshot diverged from serial replay:\n got %+v\nwant %+v", got, want)
	}
	fmt.Printf("server matches serial replay: seeds=%v value=%.0f checkpoints=%d\n",
		got.Seeds, got.Value, got.Checkpoints)

	// Graceful drain, the SIGTERM path of cmd/simserve.
	httpSrv.Close()
	if err := reg.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained and closed")
}
