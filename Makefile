# Mirrors .github/workflows/ci.yml so local runs and CI are identical.

GO ?= go

.PHONY: all build test race bench fmt fmt-check vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke run of every table/figure generator.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build race bench
