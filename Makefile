# Mirrors .github/workflows/ci.yml so local runs and CI are identical.

GO ?= go

.PHONY: all build test race bench bench-json bench-check fmt fmt-check vet lint ci serve serve-smoke recover-smoke chaos-smoke cluster-smoke spill-smoke fuzz-smoke cover

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke run of every table/figure generator,
# with -benchmem so per-op allocations are visible.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x ./...

# Machine-readable benchmark snapshot of the streaming hot path (ns/op,
# allocs/op, B/op, actions/sec). Commit the output as BENCH_<PR>.json to
# extend the cross-PR performance trajectory; CI uploads the same file as a
# workflow artifact.
BENCH_JSON ?= BENCH_PR9.json
bench-json:
	$(GO) run ./cmd/simbench -exp tput,par,query,mem -scale smoke -json $(BENCH_JSON)

# CI bench regression guard: rerun the committed baseline's experiments and
# fail on a large hot-path regression (>25% allocs/op — deterministic — or
# >50% ns/op, loose because shared 1-CPU runners are noisy; tune with
# simbench -check-allocs-tol / -check-ns-tol). A ns/op breach is retried
# (simbench -check-retries, min-of-N) before failing, since 1-CPU scheduler
# noise is one-sided. The fresh snapshot goes to a scratch file; the
# committed baseline is never overwritten.
BENCH_BASELINE ?= BENCH_PR9.json
bench-check:
	$(GO) run ./cmd/simbench -exp tput,par,query,mem -scale smoke \
		-json bench-fresh.json -check $(BENCH_BASELINE)

# Run the serving layer (cmd/simserve) on :8384 with a default tracker.
# Override flags with SERVE_FLAGS, e.g. make serve SERVE_FLAGS='-k 20 -window 100000'.
SERVE_FLAGS ?= -k 10 -window 50000
serve:
	$(GO) run ./cmd/simserve $(SERVE_FLAGS)

# End-to-end serving smoke (also a CI step): boot simserve, POST 1k
# generated actions over HTTP, assert non-empty seeds, SIGTERM drain.
serve-smoke:
	sh ./scripts/serve_smoke.sh

# End-to-end crash-recovery smoke (also a CI step): boot simserve with
# -data-dir, ingest, kill -9, restart twice (snapshot path then WAL-replay
# path) and assert the answer matches an uninterrupted serial run.
recover-smoke:
	sh ./scripts/recover_smoke.sh

# End-to-end fault-injection smoke (also a CI step): boot simserve with a
# deterministic fault plan (-fault rules + -fault-seed, CHAOS_SEED=42),
# ingest through the retrying client so 429/503s are ridden over, kill -9,
# restart clean and assert no acked action was lost and the answer matches
# an uninterrupted run.
chaos-smoke:
	sh ./scripts/chaos_smoke.sh

# End-to-end sharded-serving smoke (also a CI step): boot two simserve
# shards behind a simrouter, ingest through the router (consistent-hash
# partitioned), assert merged seeds/value/cluster health, kill one shard
# and assert flagged partial results without router downtime.
cluster-smoke:
	sh ./scripts/cluster_smoke.sh

# End-to-end tiered-storage smoke (also a CI step): boot simserve under a
# tight -memory-budget, ingest until logs spill to cold segments, kill -9,
# restart and assert recovery MAPPED the segments (cold state back, WAL
# replay covers only the tail) and the answer matches an uninterrupted
# unbudgeted run.
spill-smoke:
	sh ./scripts/spill_smoke.sh

# Short fuzz runs of the three hand-written parsers (also a CI step): the
# SIM2 snapshot container, the stream-format sniffer, and the -fault rule
# grammar. Seed corpora live in testdata/fuzz/; new crashers land there too.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzSnapshotReader -fuzztime=$(FUZZTIME) ./internal/dataio/
	$(GO) test -run='^$$' -fuzz=FuzzReadAuto -fuzztime=$(FUZZTIME) ./internal/dataio/
	$(GO) test -run='^$$' -fuzz=FuzzSegment -fuzztime=$(FUZZTIME) ./internal/dataio/
	$(GO) test -run='^$$' -fuzz=FuzzParseRules -fuzztime=$(FUZZTIME) ./internal/fault/

# Aggregate coverage profile (also uploaded as a CI artifact).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck when installed (CI installs it; locally this soft-skips so a
# bare container can still run `make ci`).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

ci: fmt-check lint build race bench serve-smoke recover-smoke chaos-smoke cluster-smoke spill-smoke fuzz-smoke bench-check
