# Mirrors .github/workflows/ci.yml so local runs and CI are identical.

GO ?= go

.PHONY: all build test race bench bench-json fmt fmt-check vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke run of every table/figure generator,
# with -benchmem so per-op allocations are visible.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x ./...

# Machine-readable benchmark snapshot of the streaming hot path (ns/op,
# allocs/op, B/op, actions/sec). Commit the output as BENCH_<PR>.json to
# extend the cross-PR performance trajectory; CI uploads the same file as a
# workflow artifact.
BENCH_JSON ?= BENCH_PR2.json
bench-json:
	$(GO) run ./cmd/simbench -exp tput,par -scale smoke -json $(BENCH_JSON)

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build race bench
