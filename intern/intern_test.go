package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternAssignsDenseIDsInOrder(t *testing.T) {
	tb := New(4)
	names := []string{"alice", "bob", "carol", "alice", "bob", "dave"}
	want := []uint32{0, 1, 2, 0, 1, 3}
	for i, n := range names {
		if got := tb.Intern(n); got != want[i] {
			t.Fatalf("Intern(%q) = %d, want %d", n, got, want[i])
		}
	}
	if tb.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tb.Len())
	}
	for i, n := range []string{"alice", "bob", "carol", "dave"} {
		if got, ok := tb.Name(uint32(i)); !ok || got != n {
			t.Errorf("Name(%d) = %q, %v, want %q", i, got, ok, n)
		}
		if id, ok := tb.Lookup(n); !ok || id != uint32(i) {
			t.Errorf("Lookup(%q) = %d, %v, want %d", n, id, ok, i)
		}
	}
	if _, ok := tb.Name(4); ok {
		t.Error("Name(4) should miss")
	}
	if _, ok := tb.Lookup("eve"); ok {
		t.Error("Lookup(eve) should miss")
	}
}

func TestAppendedSince(t *testing.T) {
	tb := New(0)
	tb.Intern("a")
	tb.Intern("b")
	got := tb.AppendedSince(0)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("AppendedSince(0) = %v", got)
	}
	tb.Intern("c")
	got = tb.AppendedSince(2)
	if len(got) != 1 || got[0] != "c" {
		t.Fatalf("AppendedSince(2) = %v", got)
	}
	if tb.AppendedSince(3) != nil {
		t.Error("AppendedSince(Len) should be nil")
	}
	if got := tb.AppendedSince(-1); len(got) != 3 {
		t.Errorf("AppendedSince(-1) = %v, want all 3", got)
	}
	// The increment is a copy: mutating it must not corrupt the table.
	got[0] = "mutated"
	if n, _ := tb.Name(0); n != "a" {
		t.Errorf("table corrupted by increment mutation: Name(0) = %q", n)
	}
}

// TestConcurrentIntern hammers Intern/Lookup/Name from many goroutines; run
// under -race this proves the locking. Every goroutine interning the same
// name must observe the same ID.
func TestConcurrentIntern(t *testing.T) {
	tb := New(0)
	const workers, perWorker = 8, 200
	ids := make([][]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]uint32, perWorker)
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("user-%d", i)
				ids[w][i] = tb.Intern(name)
				if n, ok := tb.Name(ids[w][i]); !ok || n != name {
					t.Errorf("Name(Intern(%q)) = %q, %v", name, n, ok)
					return
				}
				tb.Lookup(name)
				tb.Len()
			}
		}(w)
	}
	wg.Wait()
	if tb.Len() != perWorker {
		t.Fatalf("Len = %d, want %d", tb.Len(), perWorker)
	}
	for w := 1; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d saw Intern(user-%d) = %d, worker 0 saw %d", w, i, ids[w][i], ids[0][i])
			}
		}
	}
}
