// Package intern assigns dense uint32 IDs to external string identifiers.
//
// The SIM hot path (internal/stream, internal/oracle) wants users as small
// dense unsigned integers: map keys hash fast, per-user state packs into
// slices, and influence sets stay compact. Real deployments identify users
// by opaque strings. A Table is the boundary between the two worlds: the
// serving layer interns wire-level names into dense IDs on ingest and
// resolves IDs back to names on the way out, so the wire API speaks names
// while the core speaks uints (cf. the interning layer of janus-datalog's
// datalog engine, which plays the same trick for Datalog constants).
//
// IDs are assigned in first-appearance order starting at 0, which makes a
// Table trivially persistable: a log of names in ID order reconstructs the
// exact mapping (see AppendedSince / the serving layer's names.log).
package intern

import "sync"

// Table is a bidirectional string ⇄ dense-uint32 mapping. The zero Table is
// not ready; use New. A Table is safe for concurrent use: Intern may race
// with Lookup/Name/Len from any number of goroutines.
type Table struct {
	mu    sync.RWMutex
	ids   map[string]uint32
	names []string
}

// New returns an empty table, optionally pre-sized for sizeHint names.
func New(sizeHint int) *Table {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Table{
		ids:   make(map[string]uint32, sizeHint),
		names: make([]string, 0, sizeHint),
	}
}

// Intern returns the ID of name, assigning the next dense ID on first
// appearance.
func (t *Table) Intern(name string) uint32 {
	t.mu.RLock()
	id, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[name]; ok { // raced with another Intern
		return id
	}
	id = uint32(len(t.names))
	t.ids[name] = id
	t.names = append(t.names, name)
	return id
}

// Lookup returns the ID of name without interning it.
func (t *Table) Lookup(name string) (uint32, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.ids[name]
	return id, ok
}

// Name resolves an ID back to its name.
func (t *Table) Name(id uint32) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) >= len(t.names) {
		return "", false
	}
	return t.names[id], true
}

// Len returns the number of interned names; valid IDs are [0, Len).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}

// AppendedSince returns a copy of the names with IDs >= from, in ID order —
// the increment a persister must append to its log to cover everything
// interned so far. A from at or beyond Len returns nil.
func (t *Table) AppendedSince(from int) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if from < 0 {
		from = 0
	}
	if from >= len(t.names) {
		return nil
	}
	return append([]string(nil), t.names[from:]...)
}
