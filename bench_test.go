package repro

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6). Each benchmark regenerates its artefact through the same harness
// code that cmd/simbench runs at full scale; here the smoke scale keeps
// `go test -bench=.` tractable. b.ReportMetric exposes the headline series
// value so benchmark runs double as regression tracking for the reproduced
// shapes.

import (
	"io"
	"testing"

	"repro/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	sc := bench.ScaleSmoke()
	sc.MCRounds = 30
	sc.Samples = 1
	for i := 0; i < b.N; i++ {
		if err := bench.Run(id, sc, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Stats regenerates Table 3 (dataset statistics).
func BenchmarkTable3Stats(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable2Oracles regenerates Table 2 (checkpoint oracle comparison).
func BenchmarkTable2Oracles(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig5InfluenceValue regenerates Fig 5 (influence value vs beta).
func BenchmarkFig5InfluenceValue(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6Checkpoints regenerates Fig 6 (checkpoint counts vs beta).
func BenchmarkFig6Checkpoints(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7ThroughputBeta regenerates Fig 7 (throughput vs beta).
func BenchmarkFig7ThroughputBeta(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Quality regenerates Fig 8 (influence spread vs k).
func BenchmarkFig8Quality(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9ThroughputK regenerates Fig 9 (throughput vs k).
func BenchmarkFig9ThroughputK(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10ThroughputN regenerates Fig 10 (throughput vs window size).
func BenchmarkFig10ThroughputN(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11ThroughputL regenerates Fig 11 (throughput vs slide length).
func BenchmarkFig11ThroughputL(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12ThroughputU regenerates Fig 12 (throughput vs user count).
func BenchmarkFig12ThroughputU(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkParScaling measures the checkpoint-sharded/batched feed engine
// against the serial per-action baseline (extension beyond the paper).
func BenchmarkParScaling(b *testing.B) { runExperiment(b, "par") }

// BenchmarkTput regenerates the streaming ingestion hot-path experiment
// (ns/op, allocs/op and B/op per ingested action — the BENCH_*.json anchor).
func BenchmarkTput(b *testing.B) { runExperiment(b, "tput") }
